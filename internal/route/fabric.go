// Package route implements the global-routing substrate: a 9-metal-layer
// fabric with alternating preferred directions and a 4x wire-width spread,
// length- and congestion-driven trunk-layer assignment, and the synthesis of
// per-net routes (escape, via stacks, feeders, trunks) whose geometry the
// split-manufacturing attack later observes.
package route

import (
	"fmt"

	"repro/internal/geom"
)

// NumMetal is the number of routing metal layers (M1..M9). There are
// NumMetal-1 via layers; via layer v connects metal v and metal v+1, and a
// "split layer" in the attack is one of these via layers.
const NumMetal = 9

// NumVia is the number of via layers.
const NumVia = NumMetal - 1

// Dir is a routing direction.
type Dir int

const (
	// Horizontal wires run along x.
	Horizontal Dir = iota
	// Vertical wires run along y.
	Vertical
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == Horizontal {
		return "horizontal"
	}
	return "vertical"
}

// LayerDir returns the preferred routing direction of metal layer m
// (1-based). Odd layers are horizontal, even layers vertical, so the top
// layer M9 is horizontal — which is why, at split layer 8, truly matching
// v-pin pairs always have DiffVpinY = 0 (paper §III-G).
func LayerDir(m int) Dir {
	if m%2 == 1 {
		return Horizontal
	}
	return Vertical
}

// wireWidths[m-1] is the wire width of metal m in database units. The top
// layer is 4x the bottom layer, the spread the paper calls out as critical
// for realistic congestion distribution across layers.
var wireWidths = [NumMetal]geom.Coord{40, 40, 56, 56, 80, 80, 112, 112, 160}

// WireWidth returns the wire width of metal layer m (1-based).
func WireWidth(m int) geom.Coord { return wireWidths[m-1] }

// TrackPitch returns the routing track pitch of metal layer m: wires land on
// a track grid with this spacing. Track quantisation is what makes distinct
// nets share exact coordinates on a layer — the reason a zero DiffVpinX or
// DiffVpinY is a strong but not perfect match signal.
func TrackPitch(m int) geom.Coord { return 2 * wireWidths[m-1] }

// Snap rounds v to the nearest multiple of pitch (ties round up).
func Snap(v, pitch geom.Coord) geom.Coord {
	if pitch <= 0 {
		return v
	}
	half := pitch / 2
	if v >= 0 {
		return ((v + half) / pitch) * pitch
	}
	return -(((-v + half) / pitch) * pitch)
}

// Side labels which electrical side of a cut net a geometric object belongs
// to. The attack needs this to attribute below-split wirelength and cell
// areas to the right v-pin.
type Side int

const (
	// DriverSide geometry connects to the net's driving output pin.
	DriverSide Side = iota
	// SinkSide geometry connects to the net's sink input pins.
	SinkSide
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == DriverSide {
		return "driver"
	}
	return "sink"
}

// Segment is an axis-aligned wire on a metal layer. A and B are ordered so
// that A.X <= B.X and A.Y <= B.Y.
type Segment struct {
	Layer int
	A, B  geom.Point
	Side  Side
}

// Len returns the wirelength of the segment.
func (s Segment) Len() geom.Coord { return s.A.Manhattan(s.B) }

// Dir returns the direction of the segment; zero-length segments report the
// preferred direction of their layer.
func (s Segment) Dir() Dir {
	if s.A.Y == s.B.Y && s.A.X != s.B.X {
		return Horizontal
	}
	if s.A.X == s.B.X && s.A.Y != s.B.Y {
		return Vertical
	}
	return LayerDir(s.Layer)
}

// Via is an inter-layer connection at a point. Layer is the via layer
// (1-based): via v connects metal v and metal v+1.
type Via struct {
	Layer int
	At    geom.Point
	Side  Side
}

// Route is the full geometry of one routed net.
type Route struct {
	Net int
	// TrunkLayer is the highest metal layer the net uses. Nets with
	// TrunkLayer <= split are invisible to the attack (fully in FEOL);
	// nets with TrunkLayer > split are cut and produce two v-pins.
	TrunkLayer int
	Segments   []Segment
	Vias       []Via
	// DriverEscape and SinkEscape are the via-stack locations: where the
	// driver-side and sink-side geometry leaves the low layers and climbs
	// toward the trunk. For splits below TrunkLayer-1 these are the v-pin
	// locations.
	DriverEscape, SinkEscape geom.Point
	// TrunkA and TrunkB are the trunk segment endpoints (driver side first).
	// For a split at via layer TrunkLayer-1 these are the v-pin locations.
	TrunkA, TrunkB geom.Point
}

// WirelengthBelow returns the total wirelength of side geometry on metal
// layers <= maxLayer. This is the W feature of a v-pin: the length of the
// route fragment visible to the attacker below the split.
func (r *Route) WirelengthBelow(maxLayer int, side Side) geom.Coord {
	var total geom.Coord
	for _, s := range r.Segments {
		if s.Layer <= maxLayer && s.Side == side {
			total += s.Len()
		}
	}
	return total
}

// Wirelength returns the net's total routed wirelength.
func (r *Route) Wirelength() geom.Coord {
	var total geom.Coord
	for _, s := range r.Segments {
		total += s.Len()
	}
	return total
}

// Validate checks geometric invariants of the route: segments axis-aligned
// and normalised, layers in range, trunk layer consistent with the highest
// segment, and vias within the via-layer range.
func (r *Route) Validate() error {
	maxSeen := 0
	for i, s := range r.Segments {
		if s.Layer < 1 || s.Layer > NumMetal {
			return fmt.Errorf("route %d: segment %d on invalid layer %d", r.Net, i, s.Layer)
		}
		if s.A.X != s.B.X && s.A.Y != s.B.Y {
			return fmt.Errorf("route %d: segment %d not axis-aligned: %v-%v", r.Net, i, s.A, s.B)
		}
		if s.A.X > s.B.X || s.A.Y > s.B.Y {
			return fmt.Errorf("route %d: segment %d not normalised: %v-%v", r.Net, i, s.A, s.B)
		}
		if s.Layer > maxSeen {
			maxSeen = s.Layer
		}
	}
	if maxSeen > r.TrunkLayer {
		return fmt.Errorf("route %d: segment on layer %d above trunk layer %d", r.Net, maxSeen, r.TrunkLayer)
	}
	for i, v := range r.Vias {
		if v.Layer < 1 || v.Layer > NumVia {
			return fmt.Errorf("route %d: via %d on invalid via layer %d", r.Net, i, v.Layer)
		}
		if v.Layer >= r.TrunkLayer {
			return fmt.Errorf("route %d: via %d on via layer %d but trunk is metal %d", r.Net, i, v.Layer, r.TrunkLayer)
		}
	}
	return nil
}
