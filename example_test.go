package repro_test

// Godoc examples: compiled with the test suite, shown in the package
// documentation. They have no Output comments (results depend on the
// suite scale), so `go test` builds but does not execute them.

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
)

// Example shows the complete pipeline: generate the benchmark suite, cut
// it at the top via layer, run the paper's attack, and inspect a design's
// List-of-Candidates quality.
func Example() {
	designs, err := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	chs, err := repro.SplitAll(designs, 8)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.RunAttack(repro.Imp11(), chs)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range res.Evals {
		fmt.Printf("%s: accuracy with 5-candidate LoCs = %.1f%%\n",
			ev.Design, ev.AccuracyAtK(5)*100)
	}
}

// ExampleRunProximityAttack demonstrates the validation-based proximity
// attack, which must name exactly one partner per v-pin.
func ExampleRunProximityAttack() {
	designs, _ := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.3, Seed: 1})
	chs, _ := repro.SplitAll(designs, 8)
	outcomes, err := repro.RunProximityAttack(repro.WithY(repro.Imp9()), chs)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		fmt.Printf("%s: PA success %.1f%% (PA-LoC fraction %.4f)\n",
			o.Design, o.Success*100, o.BestFrac)
	}
}

// ExampleEvaluateRecovery measures functional netlist recovery: how often
// the attacker's reconstruction computes the right logic values.
func ExampleEvaluateRecovery() {
	designs, _ := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.3, Seed: 1})
	ch, _ := repro.Split(designs[0], 8)

	// The ground-truth pairing recovers everything — the self-check.
	rep, err := repro.EvaluateRecovery(ch, repro.TruthPairing(ch), 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("truth pairing: structural %.0f%%, functional %.0f%%\n",
		rep.StructuralRate*100, rep.FunctionalRate*100)
}

// ExampleJogTrunks applies the trunk-jog defence and shows its cost.
func ExampleJogTrunks() {
	designs, _ := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.3, Seed: 1})
	protected, cost, err := repro.JogTrunks(designs[0], 8, 4, 1.0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jogged %d nets at %.2f%% wirelength overhead\n",
		cost.ReroutedNets, cost.Overhead()*100)
	_ = protected
}

// ExampleSaveDesign round-trips a design through the .sml exchange format.
func ExampleSaveDesign() {
	designs, _ := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.3, Seed: 1})
	f, err := os.CreateTemp("", "design-*.sml")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := repro.SaveDesign(f, designs[0]); err != nil {
		log.Fatal(err)
	}
	f.Seek(0, 0)
	loaded, err := repro.LoadDesign(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(loaded.Name == designs[0].Name)
}

// ExampleChallenge_WithNoise evaluates the paper's obfuscation noise.
func ExampleChallenge_WithNoise() {
	designs, _ := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.3, Seed: 1})
	chs, _ := repro.SplitAll(designs, 6)
	rng := rand.New(rand.NewSource(9))
	noised := make([]*repro.Challenge, len(chs))
	for i, ch := range chs {
		noised[i] = ch.WithNoise(0.01, rng) // SD = 1% of die height
	}
	res, _ := repro.RunAttack(repro.Imp11(), noised)
	fmt.Printf("accuracy under 1%% noise: %.1f%%\n", res.Evals[0].AccuracyAtK(10)*100)
}
