// Command splitattack runs a single end-to-end attack: it generates the
// benchmark suite, cuts every design at the chosen split layer, trains on
// all designs except the target, and reports the target's LoC/accuracy
// trade-off and proximity-attack results.
//
// The train stage can be split out into a serialized model artifact:
//
//	splitattack train -design sb1 -config Imp-11 -o sb1.model
//	splitattack attack -design sb1 -config Imp-11 -model sb1.model
//
// The attack run verifies the artifact's spec hash against the spec it
// would train itself — same designs, configuration, and seed — and its
// evaluation is bit-identical to the in-process path at any worker count.
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a machine-readable JSON run
// report, -metrics dumps the metrics registry, and -cpuprofile/-memprofile
// capture pprof profiles. Without these flags the output and the work done
// are identical to an uninstrumented run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/attack"
	"repro/internal/cli"
	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/split"
	"repro/internal/sweep"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "train":
			runTrain(args[1:])
			return
		case "attack":
			args = args[1:]
		default:
			cli.Usage("splitattack: unknown subcommand %q (want train or attack)", args[0])
		}
	}
	runAttack(args)
}

// session is the shared setup both subcommands perform: parsed flags, the
// configured attack, and the suite's prepared instances with the target
// design resolved.
type session struct {
	app    *cli.App
	o      *obs.Context
	cfg    attack.Config
	insts  []*attack.Instance
	target int
	layer  int
	design string
	base   string
}

// prepare parses the shared target flags (plus any extras registered by
// addFlags), builds the attack configuration, generates the suite, and
// prepares the per-design instances.
func prepare(fsName string, args []string, addFlags func(*flag.FlagSet)) *session {
	fs := flag.NewFlagSet(fsName, flag.ExitOnError)
	app := cli.New("splitattack", fs)
	layer := fs.Int("layer", 8, "split (via) layer: 1..8; the paper studies 4, 6, 8")
	design := fs.String("design", "sb1", "target design: sb1 sb5 sb10 sb12 sb18 (industrial tier: sbx1 sbx10 sbx12)")
	config := fs.String("config", "Imp-11", "attack configuration: ML-9 Imp-9 Imp-7 Imp-11 (+Y suffix at layer 8), DL-MLP, DL-MLP-rank")
	base := fs.String("base", "reptree", "bagging base classifier: reptree or randomtree")
	learner := fs.String("learner", "",
		"learner family override: bagging, mlp, or logistic (default: the config's own family)")
	mlpHidden := fs.Int("mlp-hidden", 0, "mlp hidden width (0 = default 16; mlp family only)")
	mlpEpochs := fs.Int("mlp-epochs", 0, "mlp training epochs (0 = default 30; mlp family only)")
	mlpRate := fs.Float64("mlp-rate", 0, "mlp learning rate (0 = default 0.05; mlp family only)")
	ranking := fs.Bool("ranking", false, "softmax-normalise each v-pin's candidate scores (list-wise ranking head)")
	maxLoC := fs.Int("max-loc", 0,
		"absolute cap on retained per-v-pin candidate lists (0 = fraction-only); bounds memory on industrial designs")
	shard := fs.Int("shard-vpins", 0, "spatial-region size of the streamed scoring stage (0 = automatic)")
	if addFlags != nil {
		addFlags(fs)
	}
	o := app.Parse(args)

	cfg, ok := attack.ConfigByName(*config)
	if !ok {
		cli.Usage("unknown config %q", *config)
	}
	if *base == "randomtree" {
		cfg = attack.WithBase(cfg, ml.RandomTree, 0)
	}
	if *learner != "" {
		cfg = attack.WithFamily(cfg, *learner)
	}
	if *mlpHidden != 0 {
		cfg.MLPHidden = *mlpHidden
	}
	if *mlpEpochs != 0 {
		cfg.MLPEpochs = *mlpEpochs
	}
	if *mlpRate != 0 {
		cfg.MLPRate = *mlpRate
	}
	if *ranking {
		cfg = attack.WithRanking(cfg)
	}
	if err := cfg.Validate(); err != nil {
		cli.Usage("%v", err)
	}
	cfg.Seed = app.Seed
	cfg.Workers = app.Workers()
	cfg.Obs = o
	cfg.MaxLoCCount = *maxLoC
	cfg.ShardVpins = *shard
	// The artifact store makes repeated invocations warm when
	// -model-cache-dir points at a persistent directory; a memory-only
	// store is free for the single-target run.
	cfg.Models = app.ModelStore()

	designs, err := layout.GenerateSuiteObs(o, layout.SuiteConfig{
		Tier: app.Tier, Scale: app.Scale, Seed: app.Seed, Workers: app.Workers()})
	if err != nil {
		cli.Fatal(err)
	}
	target := -1
	chs := make([]*split.Challenge, len(designs))
	for i, d := range designs {
		if chs[i], err = split.NewChallengeObs(o, d, *layer); err != nil {
			cli.Fatal(err)
		}
		if d.Name == *design {
			target = i
		}
	}
	if target < 0 {
		cli.Usage("unknown design %q", *design)
	}
	// Instances (extractors + spatial indexes) are prepared once and shared
	// by the attack and proximity stages.
	insts := attack.NewInstancesWorkers(chs, app.Workers())
	return &session{app: app, o: o, cfg: cfg, insts: insts, target: target,
		layer: *layer, design: *design, base: *base}
}

// runTrain executes the train stage alone: it builds the leave-one-out spec
// for the held-out design, trains the artifact, and serializes it.
func runTrain(args []string) {
	var out *string
	s := prepare("splitattack train", args, func(fs *flag.FlagSet) {
		out = fs.String("o", "", "artifact output path (default <config>-<design>-L<layer>.model)")
	})
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s-L%d.model", s.cfg.Name, s.design, s.layer)
	}

	spec, _, err := attack.TrainSpec(s.cfg, s.insts, s.target)
	if err != nil {
		cli.Fatal(err)
	}
	t0 := time.Now()
	art, stats, err := model.Train(spec)
	if err != nil {
		cli.Fatal(err)
	}
	dur := time.Since(t0)
	if err := art.WriteFile(path); err != nil {
		cli.Fatal(err)
	}

	fmt.Printf("trained %s for held-out %s at split layer %d in %v\n",
		s.cfg.Name, s.design, s.layer, dur.Round(time.Millisecond))
	fmt.Printf("  spec     %s\n", art.Meta.SpecHash)
	if art.Meta.Family != "" {
		fmt.Printf("  level-1  %s model on %d samples\n", art.Meta.Family, art.Meta.Samples)
	} else {
		fmt.Printf("  level-1  %d trees on %d samples\n", art.Meta.Trees, art.Meta.Samples)
	}
	if art.Meta.Level == 2 {
		fmt.Printf("  level-2  %d trees on %d samples\n", art.Meta.Level2Trees, art.Meta.Level2Samples)
	}
	fmt.Printf("wrote %s\n", path)

	configMap := map[string]any{
		"design": s.design, "layer": s.layer, "config": s.cfg.Name, "base": s.base,
	}
	summary := map[string]any{
		"spec_hash":      art.Meta.SpecHash,
		"artifact":       path,
		"samples":        art.Meta.Samples,
		"trees":          art.Meta.Trees,
		"level2_samples": art.Meta.Level2Samples,
		"train_ns":       int64(dur),
		"phases": map[string]any{
			"sampling_ns": int64(stats.Sampling),
			"level1_ns":   int64(stats.Level1),
			"level2_ns":   int64(stats.Level2),
		},
	}
	s.app.Finish(s.o, configMap, summary)
}

// runAttack executes the attack (the default subcommand): in-process
// training unless -model supplies a pre-trained artifact to score with.
func runAttack(args []string) {
	var pa *bool
	var modelPath *string
	s := prepare("splitattack attack", args, func(fs *flag.FlagSet) {
		pa = fs.Bool("pa", false, "also run the validation-based proximity attack")
		modelPath = fs.String("model", "",
			"score with this pre-trained artifact (from 'splitattack train') instead of training in-process")
	})
	cfg, o := s.cfg, s.o

	var ev *attack.Evaluation
	var radiusNorm float64
	var err error
	if *modelPath != "" {
		art, lerr := model.LoadFile(*modelPath)
		if lerr != nil {
			cli.Fatal(lerr)
		}
		ev, radiusNorm, err = attack.RunTargetArtifact(cfg, s.insts, s.target, art)
		if err == nil {
			fmt.Printf("scoring with artifact %s (spec %.12s, trained by %s)\n",
				*modelPath, art.Meta.SpecHash, art.Meta.Version)
		}
	} else if ck := s.app.Checkpoint(); ck != nil {
		// Checkpointed single-target run: the fold is saved as (or served
		// from) the same work unit an `experiments -shard` worker or a sweep
		// job would produce at these coordinates, so the commands compose.
		u := sweep.Unit{
			Prov:   sweep.Provenance{Tier: s.app.Tier, Scale: s.app.Scale, Seed: s.app.Seed},
			Config: cfg.Name, Spec: cfg.OptionsHash(),
			Layer: s.layer, Fold: s.target, Design: s.design,
		}
		var outcome sweep.Outcome
		ev, radiusNorm, outcome, err = sweep.RunUnit(o, ck, u, cfg, s.insts)
		if err == nil {
			fmt.Printf("checkpoint %s: unit %s %s\n", ck.Dir(), u.Key(), outcome)
		}
	} else {
		// Single-target entry point: only the held-out design's model is
		// trained, instead of the full leave-one-out sweep over all designs.
		ev, radiusNorm, err = attack.RunTargetInstances(cfg, s.insts, s.target)
	}
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("%s at split layer %d, config %s: %d v-pins\n", s.design, s.layer, cfg.Name, ev.N)
	fmt.Printf("train %v, test %v\n\n", ev.TrainDur.Round(1e6), ev.TestDur.Round(1e6))
	if s.app.Obs.Verbose {
		ph := ev.Phases
		fmt.Printf("phases: sampling %v, level-1 %v, level-2 %v, scoring %v (%d pairs)\n\n",
			ph.Sampling.Round(1e6), ph.Level1.Round(1e6), ph.Level2.Round(1e6),
			ph.Scoring.Round(1e6), ev.PairsScored)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "|LoC|\taccuracy")
	accAtK := map[string]any{}
	for _, k := range []int{1, 2, 5, 10, 20, 50, 100} {
		if k > ev.N {
			break
		}
		fmt.Fprintf(tw, "%d\t%.2f%%\n", k, ev.AccuracyAtK(k)*100)
		accAtK[fmt.Sprintf("%d", k)] = ev.AccuracyAtK(k)
	}
	tw.Flush()
	fmt.Printf("max accuracy (all scored candidates): %.2f%%\n", ev.MaxAccuracy()*100)
	for _, acc := range []float64{0.5, 0.8, 0.9, 0.95} {
		loc := ev.LoCForAccuracy(acc)
		if loc < 0 {
			fmt.Printf("|LoC| for %.0f%% accuracy: unreachable (neighborhood saturation)\n", acc*100)
		} else {
			fmt.Printf("|LoC| for %.0f%% accuracy: %.0f\n", acc*100, loc)
		}
	}

	summary := map[string]any{
		"vpins":         ev.N,
		"train_ns":      int64(ev.TrainDur),
		"test_ns":       int64(ev.TestDur),
		"pairs_scored":  ev.PairsScored,
		"max_accuracy":  ev.MaxAccuracy(),
		"accuracy_at_k": accAtK,
		"phases": map[string]any{
			"sampling_ns": int64(ev.Phases.Sampling),
			"level1_ns":   int64(ev.Phases.Level1),
			"level2_ns":   int64(ev.Phases.Level2),
			"scoring_ns":  int64(ev.Phases.Scoring),
		},
	}

	if *pa {
		fmt.Println("\nProximity attack (validation-based PA-LoC fraction):")
		out, err := attack.ProximityTargetInstances(cfg, s.insts, s.target, ev, radiusNorm)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("success %.2f%% (fixed-threshold: %.2f%%), PA-LoC fraction %.4f, validation %v\n",
			out.Success*100, out.FixedSuccess*100, out.BestFrac, out.ValidationDur.Round(time.Millisecond))
		summary["pa"] = map[string]any{
			"success":       out.Success,
			"fixed_success": out.FixedSuccess,
			"best_frac":     out.BestFrac,
		}
	}

	trees := cfg.NumTrees
	if trees == 0 {
		if cfg.BaseKind == ml.RandomTree {
			trees = ml.DefaultForestSize
		} else {
			trees = ml.DefaultBaggingSize
		}
	}
	configMap := map[string]any{
		"design": s.design,
		"layer":  s.layer,
		"config": cfg.Name,
		"base":   s.base,
		"trees":  trees,
	}
	if *modelPath != "" {
		configMap["model"] = *modelPath
	}
	s.app.Finish(o, configMap, summary)
}
