// Command splitattack runs a single end-to-end attack: it generates the
// benchmark suite, cuts every design at the chosen split layer, trains on
// all designs except the target, and reports the target's LoC/accuracy
// trade-off and proximity-attack results.
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a machine-readable JSON run
// report, -metrics dumps the metrics registry, and -cpuprofile/-memprofile
// capture pprof profiles. Without these flags the output and the work done
// are identical to an uninstrumented run.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/split"
)

func main() {
	scale := flag.Float64("scale", 1.0, "suite scale factor")
	seed := flag.Int64("seed", 1, "generation and attack seed")
	layer := flag.Int("layer", 8, "split (via) layer: 1..8; the paper studies 4, 6, 8")
	design := flag.String("design", "sb1", "target design: sb1 sb5 sb10 sb12 sb18")
	config := flag.String("config", "Imp-11", "attack configuration: ML-9 Imp-9 Imp-7 Imp-11 (+Y suffix at layer 8)")
	base := flag.String("base", "reptree", "bagging base classifier: reptree or randomtree")
	pa := flag.Bool("pa", false, "also run the validation-based proximity attack")
	var cli obs.CLI
	cli.Register(flag.CommandLine)
	flag.Parse()

	if cli.ShowVersion {
		fmt.Println("splitattack", obs.Version())
		return
	}
	o, err := cli.Setup("splitattack")
	if err != nil {
		fatal(err)
	}

	cfg, ok := configByName(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}
	if *base == "randomtree" {
		cfg = attack.WithBase(cfg, ml.RandomTree, 0)
	}
	cfg.Seed = *seed
	cfg.Workers = cli.Workers
	cfg.Obs = o

	designs, err := layout.GenerateSuiteObs(o, layout.SuiteConfig{Scale: *scale, Seed: *seed, Workers: cli.Workers})
	if err != nil {
		fatal(err)
	}
	target := -1
	chs := make([]*split.Challenge, len(designs))
	for i, d := range designs {
		if chs[i], err = split.NewChallengeObs(o, d, *layer); err != nil {
			fatal(err)
		}
		if d.Name == *design {
			target = i
		}
	}
	if target < 0 {
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}

	// Single-target entry point: only the held-out design's model is
	// trained, instead of the full leave-one-out sweep over all designs.
	// Instances (extractors + spatial indexes) are prepared once and shared
	// with the proximity attack below.
	insts := attack.NewInstancesWorkers(chs, cli.Workers)
	ev, radiusNorm, err := attack.RunTargetInstances(cfg, insts, target)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s at split layer %d, config %s: %d v-pins\n", *design, *layer, cfg.Name, ev.N)
	fmt.Printf("train %v, test %v\n\n", ev.TrainDur.Round(1e6), ev.TestDur.Round(1e6))
	if cli.Verbose {
		ph := ev.Phases
		fmt.Printf("phases: sampling %v, level-1 %v, level-2 %v, scoring %v (%d pairs)\n\n",
			ph.Sampling.Round(1e6), ph.Level1.Round(1e6), ph.Level2.Round(1e6),
			ph.Scoring.Round(1e6), ev.PairsScored)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "|LoC|\taccuracy")
	accAtK := map[string]any{}
	for _, k := range []int{1, 2, 5, 10, 20, 50, 100} {
		if k > ev.N {
			break
		}
		fmt.Fprintf(tw, "%d\t%.2f%%\n", k, ev.AccuracyAtK(k)*100)
		accAtK[fmt.Sprintf("%d", k)] = ev.AccuracyAtK(k)
	}
	tw.Flush()
	fmt.Printf("max accuracy (all scored candidates): %.2f%%\n", ev.MaxAccuracy()*100)
	for _, acc := range []float64{0.5, 0.8, 0.9, 0.95} {
		loc := ev.LoCForAccuracy(acc)
		if loc < 0 {
			fmt.Printf("|LoC| for %.0f%% accuracy: unreachable (neighborhood saturation)\n", acc*100)
		} else {
			fmt.Printf("|LoC| for %.0f%% accuracy: %.0f\n", acc*100, loc)
		}
	}

	summary := map[string]any{
		"vpins":         ev.N,
		"train_ns":      int64(ev.TrainDur),
		"test_ns":       int64(ev.TestDur),
		"pairs_scored":  ev.PairsScored,
		"max_accuracy":  ev.MaxAccuracy(),
		"accuracy_at_k": accAtK,
		"phases": map[string]any{
			"sampling_ns": int64(ev.Phases.Sampling),
			"level1_ns":   int64(ev.Phases.Level1),
			"level2_ns":   int64(ev.Phases.Level2),
			"scoring_ns":  int64(ev.Phases.Scoring),
		},
	}

	if *pa {
		fmt.Println("\nProximity attack (validation-based PA-LoC fraction):")
		out, err := attack.ProximityTargetInstances(cfg, insts, target, ev, radiusNorm)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("success %.2f%% (fixed-threshold: %.2f%%), PA-LoC fraction %.4f, validation %v\n",
			out.Success*100, out.FixedSuccess*100, out.BestFrac, out.ValidationDur.Round(time.Millisecond))
		summary["pa"] = map[string]any{
			"success":       out.Success,
			"fixed_success": out.FixedSuccess,
			"best_frac":     out.BestFrac,
		}
	}

	trees := cfg.NumTrees
	if trees == 0 {
		if cfg.BaseKind == ml.RandomTree {
			trees = ml.DefaultForestSize
		} else {
			trees = ml.DefaultBaggingSize
		}
	}
	configMap := map[string]any{
		"design":  *design,
		"layer":   *layer,
		"config":  cfg.Name,
		"scale":   *scale,
		"seed":    *seed,
		"base":    *base,
		"trees":   trees,
		"workers": cli.Workers,
	}
	if err := cli.Finish(o, configMap, summary); err != nil {
		fatal(err)
	}
}

func configByName(name string) (attack.Config, bool) {
	all := append(attack.StandardConfigs(), attack.StandardConfigsY()...)
	for _, c := range all {
		if c.Name == name {
			return c, true
		}
	}
	return attack.Config{}, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
