// Command splitattack runs a single end-to-end attack: it generates the
// benchmark suite, cuts every design at the chosen split layer, trains on
// all designs except the target, and reports the target's LoC/accuracy
// trade-off and proximity-attack results.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/split"
)

func main() {
	scale := flag.Float64("scale", 1.0, "suite scale factor")
	seed := flag.Int64("seed", 1, "generation and attack seed")
	layer := flag.Int("layer", 8, "split (via) layer: 1..8; the paper studies 4, 6, 8")
	design := flag.String("design", "sb1", "target design: sb1 sb5 sb10 sb12 sb18")
	config := flag.String("config", "Imp-11", "attack configuration: ML-9 Imp-9 Imp-7 Imp-11 (+Y suffix at layer 8)")
	base := flag.String("base", "reptree", "bagging base classifier: reptree or randomtree")
	pa := flag.Bool("pa", false, "also run the validation-based proximity attack")
	flag.Parse()

	cfg, ok := configByName(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}
	if *base == "randomtree" {
		cfg = attack.WithBase(cfg, ml.RandomTree, 0)
	}
	cfg.Seed = *seed

	designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	target := -1
	chs := make([]*split.Challenge, len(designs))
	for i, d := range designs {
		if chs[i], err = split.NewChallenge(d, *layer); err != nil {
			fatal(err)
		}
		if d.Name == *design {
			target = i
		}
	}
	if target < 0 {
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}

	res, err := attack.Run(cfg, chs)
	if err != nil {
		fatal(err)
	}
	ev := res.Evals[target]
	fmt.Printf("%s at split layer %d, config %s: %d v-pins\n", *design, *layer, cfg.Name, ev.N)
	fmt.Printf("train %v, test %v\n\n", ev.TrainDur.Round(1e6), ev.TestDur.Round(1e6))

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "|LoC|\taccuracy")
	for _, k := range []int{1, 2, 5, 10, 20, 50, 100} {
		if k > ev.N {
			break
		}
		fmt.Fprintf(tw, "%d\t%.2f%%\n", k, ev.AccuracyAtK(k)*100)
	}
	tw.Flush()
	fmt.Printf("max accuracy (all scored candidates): %.2f%%\n", ev.MaxAccuracy()*100)
	for _, acc := range []float64{0.5, 0.8, 0.9, 0.95} {
		loc := ev.LoCForAccuracy(acc)
		if loc < 0 {
			fmt.Printf("|LoC| for %.0f%% accuracy: unreachable (neighborhood saturation)\n", acc*100)
		} else {
			fmt.Printf("|LoC| for %.0f%% accuracy: %.0f\n", acc*100, loc)
		}
	}

	if *pa {
		fmt.Println("\nProximity attack (validation-based PA-LoC fraction):")
		outs, err := attack.RunProximity(cfg, chs)
		if err != nil {
			fatal(err)
		}
		o := outs[target]
		fmt.Printf("success %.2f%% (fixed-threshold: %.2f%%), PA-LoC fraction %.4f, validation %v\n",
			o.Success*100, o.FixedSuccess*100, o.BestFrac, o.ValidationDur.Round(1e6))
	}
}

func configByName(name string) (attack.Config, bool) {
	all := append(attack.StandardConfigs(), attack.StandardConfigsY()...)
	for _, c := range all {
		if c.Name == name {
			return c, true
		}
	}
	return attack.Config{}, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
