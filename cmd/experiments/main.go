// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments [-scale 1.0] [-seed 1] [-run table1,fig9 | -run all] [-list]
//
// Scale 1.0 corresponds to roughly 1/20th of the paper's industrial
// designs (see DESIGN.md); smaller scales run faster with noisier numbers.
//
// Sweeps distribute across processes (or machines sharing a filesystem)
// with -checkpoint-dir and -shard: each shard computes only the work units
// it owns and writes per-fold partials; a final run with -checkpoint-dir
// alone merges them into output bit-identical to a single-process run.
//
//	experiments -run all -checkpoint-dir ck -shard 1/3   # worker 1
//	experiments -run all -checkpoint-dir ck -shard 2/3   # worker 2
//	experiments -run all -checkpoint-dir ck -shard 3/3   # worker 3
//	experiments -run all -checkpoint-dir ck              # merge + render
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a JSON run report with
// per-experiment spans and suite-cache metrics, -metrics dumps the metrics
// registry, and -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	app := cli.New("experiments", fs)
	run := fs.String("run", "all", "comma-separated experiment IDs, or 'all'")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	shardFlag := fs.String("shard", "",
		"compute only this partition of the selected experiments' work units, as i/n (requires -checkpoint-dir); exits without rendering")
	o := app.Parse(os.Args[1:])

	shard, err := sweep.ParseShard(*shardFlag)
	if err != nil {
		cli.Usage("%v", err)
	}
	if *shardFlag != "" && app.CheckpointDir == "" {
		cli.Usage("-shard requires -checkpoint-dir: shards communicate through the checkpoint")
	}

	if *list {
		for _, e := range experiments.AllWithExtensions() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "everything":
		selected = experiments.AllWithExtensions()
	default:
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				cli.Usage("%v", err)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("Generating benchmark suite (scale %.2f, seed %d)...\n", app.Scale, app.Seed)
	t0 := time.Now()
	suite, err := experiments.NewSuiteTier(o, app.Tier, app.Scale, app.Seed, app.Workers())
	if err != nil {
		cli.Fatal(err)
	}
	suite.SetModelStore(app.ModelStore())
	suite.Checkpoint = app.Checkpoint()
	suite.Shard = shard
	for _, d := range suite.Designs {
		fmt.Printf("  %-5s cells=%d nets=%d\n", d.Name, len(d.Netlist.Cells), len(d.Netlist.Nets))
	}
	fmt.Printf("Suite ready in %v.\n\n", time.Since(t0).Round(time.Millisecond))

	if *shardFlag != "" {
		// Shard mode: compute this shard's work units into the checkpoint
		// and exit. Rendering happens in a later merge run (no -shard).
		t := time.Now()
		stats, err := suite.RunPlan(suite.Plan(selected))
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("Shard %s done in %v: %s\n", shard, time.Since(t).Round(time.Millisecond), stats)
		app.Finish(o, map[string]any{"run": *run, "shard": shard.String()}, map[string]any{
			"units_planned":    stats.Planned,
			"units_owned":      stats.Owned,
			"units_computed":   stats.Computed,
			"units_loaded":     stats.Loaded,
			"units_recomputed": stats.Recomputed,
		})
		return
	}

	ran := []string{}
	durations := map[string]any{}
	prog := o.NewProgress("experiments", int64(len(selected)))
	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t := time.Now()
		if err := experiments.RunExperiment(suite, e, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		d := time.Since(t)
		fmt.Printf("(%s finished in %v)\n\n", e.ID, d.Round(time.Millisecond))
		ran = append(ran, e.ID)
		durations[e.ID+"_ns"] = int64(d)
		prog.Add(1)
	}
	prog.Finish()

	configMap := map[string]any{"run": *run}
	// Cache effectiveness: instance_cache is how often a (layer, noise)
	// sweep reused prepared extractors/indexes; artifact_cache is how often
	// a fold's trained model was reused instead of retrained (config sweeps
	// and two-level runs sharing their level-1 stage).
	ic := o.Metrics().Cache("suite.instances")
	ac := o.Metrics().Cache("model.artifacts")
	summary := map[string]any{
		"experiments":          ran,
		"experiment_durations": durations,
		"instance_cache":       map[string]any{"hits": ic.Hits(), "misses": ic.Misses()},
		"artifact_cache":       map[string]any{"hits": ac.Hits(), "misses": ac.Misses()},
	}
	if suite.Checkpoint != nil {
		// A pure merge run shows computed 0 and every unit loaded.
		summary["sweep_units"] = map[string]any{
			"computed":   o.Metrics().Counter("sweep.units.done").Value(),
			"loaded":     o.Metrics().Counter("sweep.units.skipped").Value(),
			"recomputed": o.Metrics().Counter("sweep.units.recomputed").Value(),
		}
	}
	app.Finish(o, configMap, summary)
}
