// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments [-scale 1.0] [-seed 1] [-run table1,fig9 | -run all] [-list]
//
// Scale 1.0 corresponds to roughly 1/20th of the paper's industrial
// designs (see DESIGN.md); smaller scales run faster with noisier numbers.
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a JSON run report with
// per-experiment spans and suite-cache metrics, -metrics dumps the metrics
// registry, and -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	app := cli.New("experiments", fs)
	run := fs.String("run", "all", "comma-separated experiment IDs, or 'all'")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	o := app.Parse(os.Args[1:])

	if *list {
		for _, e := range experiments.AllWithExtensions() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "everything":
		selected = experiments.AllWithExtensions()
	default:
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				cli.Usage("%v", err)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("Generating benchmark suite (scale %.2f, seed %d)...\n", app.Scale, app.Seed)
	t0 := time.Now()
	suite, err := experiments.NewSuiteTier(o, app.Tier, app.Scale, app.Seed, app.Workers())
	if err != nil {
		cli.Fatal(err)
	}
	for _, d := range suite.Designs {
		fmt.Printf("  %-5s cells=%d nets=%d\n", d.Name, len(d.Netlist.Cells), len(d.Netlist.Nets))
	}
	fmt.Printf("Suite ready in %v.\n\n", time.Since(t0).Round(time.Millisecond))

	ran := []string{}
	durations := map[string]any{}
	prog := o.NewProgress("experiments", int64(len(selected)))
	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t := time.Now()
		if err := experiments.RunExperiment(suite, e, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		d := time.Since(t)
		fmt.Printf("(%s finished in %v)\n\n", e.ID, d.Round(time.Millisecond))
		ran = append(ran, e.ID)
		durations[e.ID+"_ns"] = int64(d)
		prog.Add(1)
	}
	prog.Finish()

	configMap := map[string]any{"run": *run}
	// Cache effectiveness: instance_cache is how often a (layer, noise)
	// sweep reused prepared extractors/indexes; artifact_cache is how often
	// a fold's trained model was reused instead of retrained (config sweeps
	// and two-level runs sharing their level-1 stage).
	ic := o.Metrics().Cache("suite.instances")
	ac := o.Metrics().Cache("model.artifacts")
	summary := map[string]any{
		"experiments":          ran,
		"experiment_durations": durations,
		"instance_cache":       map[string]any{"hits": ic.Hits(), "misses": ic.Misses()},
		"artifact_cache":       map[string]any{"hits": ac.Hits(), "misses": ac.Misses()},
	}
	app.Finish(o, configMap, summary)
}
