// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments [-scale 1.0] [-seed 1] [-run table1,fig9 | -run all] [-list]
//
// Scale 1.0 corresponds to roughly 1/20th of the paper's industrial
// designs (see DESIGN.md); smaller scales run faster with noisier numbers.
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a JSON run report with
// per-experiment spans and suite-cache metrics, -metrics dumps the metrics
// registry, and -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 1.0, "benchmark suite scale factor")
	seed := flag.Int64("seed", 1, "generation and attack seed")
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	var cli obs.CLI
	cli.Register(flag.CommandLine)
	flag.Parse()

	if cli.ShowVersion {
		fmt.Println("experiments", obs.Version())
		return
	}
	if *list {
		for _, e := range experiments.AllWithExtensions() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	o, err := cli.Setup("experiments")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "everything":
		selected = experiments.AllWithExtensions()
	default:
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("Generating benchmark suite (scale %.2f, seed %d)...\n", *scale, *seed)
	t0 := time.Now()
	suite, err := experiments.NewSuiteParallel(o, *scale, *seed, cli.Workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range suite.Designs {
		fmt.Printf("  %-5s cells=%d nets=%d\n", d.Name, len(d.Netlist.Cells), len(d.Netlist.Nets))
	}
	fmt.Printf("Suite ready in %v.\n\n", time.Since(t0).Round(time.Millisecond))

	ran := []string{}
	durations := map[string]any{}
	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t := time.Now()
		if err := experiments.RunExperiment(suite, e, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		d := time.Since(t)
		fmt.Printf("(%s finished in %v)\n\n", e.ID, d.Round(time.Millisecond))
		ran = append(ran, e.ID)
		durations[e.ID+"_ns"] = int64(d)
	}

	configMap := map[string]any{"scale": *scale, "seed": *seed, "run": *run, "workers": cli.Workers}
	// Instance-cache effectiveness: how often a (layer, noise) sweep reused
	// prepared extractors/indexes instead of re-deriving them.
	ic := o.Metrics().Cache("suite.instances")
	summary := map[string]any{
		"experiments":          ran,
		"experiment_durations": durations,
		"instance_cache":       map[string]any{"hits": ic.Hits(), "misses": ic.Misses()},
	}
	if err := cli.Finish(o, configMap, summary); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
