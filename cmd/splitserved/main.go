// Command splitserved is the attack-as-a-service server: a long-running
// JSON-over-HTTP job service exposing the engine's train / attack /
// proximity / sweep stages as asynchronous jobs over a shared warm model
// cache. See API.md for the endpoint reference; the short version:
//
//	splitserved -addr :8080 -state /var/lib/splitserved &
//	curl -s -X POST localhost:8080/jobs \
//	  -d '{"kind":"attack","design":"sb1","layer":8,"config":{"preset":"Imp-11"}}'
//	curl -s localhost:8080/jobs/j-000001
//	curl -s localhost:8080/jobs/j-000001/result
//
// Jobs run on a bounded pool (-pool) behind a bounded queue (-queue;
// overflow is rejected with 429), cancel via DELETE /jobs/{id}, and — with
// -state — survive restarts: finished jobs keep serving their results,
// pending jobs resume, and jobs that died mid-run come back as
// "interrupted". The obs telemetry endpoints (/metrics, /progress, /spans,
// /healthz, /debug/pprof) are mounted on the same address.
//
// An Evaluation fetched through the job API is bit-identical to the same
// configuration run via cmd/splitattack: serving changes scheduling, never
// results.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("splitserved", flag.ExitOnError)
	app := cli.New("splitserved", fs)
	addr := fs.String("addr", ":8080", "HTTP listen address (host:port; :0 for an ephemeral port)")
	pool := fs.Int("pool", serve.DefaultPool, "concurrently running jobs")
	queue := fs.Int("queue", serve.DefaultQueue, "pending-job queue bound; overflow is rejected with 429")
	state := fs.String("state", "", "state directory for job/result persistence across restarts (empty = memory only)")
	checkpoint := fs.String("checkpoint", "",
		"sweep checkpoint directory for per-fold partials (sharded sweep jobs; default <state>/checkpoints when -state is set)")
	o := app.Parse(os.Args[1:])
	if o == nil {
		// The server always carries an obs context: /metrics and /progress
		// are part of the API, not an opt-in extra.
		o = obs.New(obs.Options{Command: "splitserved"})
	}

	srv, err := serve.New(serve.Options{
		Obs:           o,
		Store:         app.ModelStore(),
		Workers:       app.Workers(),
		Pool:          *pool,
		Queue:         *queue,
		StateDir:      *state,
		CheckpointDir: *checkpoint,
		DefaultTier:   app.Tier,
		DefaultScale:  app.Scale,
		DefaultSeed:   app.Seed,
	})
	if err != nil {
		cli.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("splitserved listening on http://%s (pool %d, queue %d)\n",
		ln.Addr(), *pool, *queue)
	if *state != "" {
		fmt.Printf("state dir %s\n", *state)
	}

	// Serve until SIGINT/SIGTERM, then shut down gracefully: stop
	// accepting, cancel running jobs (persisted as interrupted), leave
	// pending jobs on disk for the next start.
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("received %v, shutting down\n", sig)
		if err := httpSrv.Close(); err != nil {
			o.Log().Warn("http close", "err", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			cli.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		cli.Fatal(err)
	}

	jobs := srv.Jobs()
	byState := map[string]int{}
	for _, j := range jobs {
		byState[string(srv.Status(j).State)]++
	}
	app.Finish(o, map[string]any{
		"addr": ln.Addr().String(), "pool": *pool, "queue": *queue, "state": *state,
	}, map[string]any{
		"jobs": len(jobs), "by_state": byState,
	})
}
