// Perf-baseline gate: `benchgen -check` reruns the scoring and training
// measurements and compares them against the committed BENCH_scoring.json /
// BENCH_train.json baselines.
//
// The gate is designed to be meaningful across machines. Two kinds of
// fields are checked:
//
//   - Exact fields (pair/batch/row counts, sample/tree counts, artifact
//     bytes) are deterministic functions of (scale, seed) — the engine's
//     bit-identity guarantee — and must match the baseline exactly on any
//     hardware. A mismatch means behavior changed, not that a machine is
//     slow.
//   - Ratio fields (batch-vs-scalar speedup, mallocs per pair, cold-train
//     vs warm-load speedup) compare two measurements taken on the same
//     machine in the same process, so they transfer across hardware. Each
//     must stay within the tolerance of its baseline value (speedups may
//     drop to baseline*(1-tol); allocation rates may grow to
//     baseline*(1+tol)).
//
// Absolute wall-clock numbers in the baselines (pairs/sec, ns) are recorded
// for the perf trajectory but never gated on.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/layout"
	"repro/internal/obs"
)

// checker accumulates gate results and prints one line per check.
type checker struct {
	checks     int
	violations []string
}

// exact gates a deterministic field on equality.
func (c *checker) exact(name string, base, cur int64) {
	c.checks++
	if base == cur {
		fmt.Printf("  ok    %-44s %d (exact)\n", name, cur)
		return
	}
	v := fmt.Sprintf("%s: got %d, baseline %d (must match exactly)", name, cur, base)
	c.violations = append(c.violations, v)
	fmt.Printf("  FAIL  %-44s %d, baseline %d\n", name, cur, base)
}

// exactStr gates a deterministic string field (design names, evaluation
// digests) on equality.
func (c *checker) exactStr(name string, base, cur string) {
	c.checks++
	if base == cur {
		fmt.Printf("  ok    %-44s %.24s (exact)\n", name, cur)
		return
	}
	v := fmt.Sprintf("%s: got %q, baseline %q (must match exactly)", name, cur, base)
	c.violations = append(c.violations, v)
	fmt.Printf("  FAIL  %-44s %q, baseline %q\n", name, cur, base)
}

// floor gates a same-machine ratio against its allowed minimum
// base*(1-tol).
func (c *checker) floor(name string, base, cur, tol float64) {
	c.checks++
	limit := base * (1 - tol)
	if cur >= limit {
		fmt.Printf("  ok    %-44s %.4g (baseline %.4g, floor %.4g)\n", name, cur, base, limit)
		return
	}
	v := fmt.Sprintf("%s: %.4g below floor %.4g (baseline %.4g, tolerance %.0f%%)",
		name, cur, limit, base, tol*100)
	c.violations = append(c.violations, v)
	fmt.Printf("  FAIL  %-44s %.4g below floor %.4g (baseline %.4g)\n", name, cur, limit, base)
}

// ceiling gates a same-machine ratio against its allowed maximum
// base*(1+tol).
func (c *checker) ceiling(name string, base, cur, tol float64) {
	c.checks++
	limit := base * (1 + tol)
	if cur <= limit {
		fmt.Printf("  ok    %-44s %.4g (baseline %.4g, ceiling %.4g)\n", name, cur, base, limit)
		return
	}
	v := fmt.Sprintf("%s: %.4g above ceiling %.4g (baseline %.4g, tolerance %.0f%%)",
		name, cur, limit, base, tol*100)
	c.violations = append(c.violations, v)
	fmt.Printf("  FAIL  %-44s %.4g above ceiling %.4g (baseline %.4g)\n", name, cur, limit, base)
}

func loadBaseline(path string, doc any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchgen -check: %w", err)
	}
	if err := json.Unmarshal(b, doc); err != nil {
		return fmt.Errorf("benchgen -check: %s: %w", path, err)
	}
	return nil
}

// checkSuite generates (or reuses) the benchmark suite at the baseline's
// coordinates.
type suiteCache struct {
	o       *obs.Context
	workers int
	scale   float64
	seed    int64
	designs []*layout.Design
}

func (sc *suiteCache) get(scale float64, seed int64) ([]*layout.Design, error) {
	if sc.designs != nil && sc.scale == scale && sc.seed == seed {
		return sc.designs, nil
	}
	designs, err := layout.GenerateSuiteObs(sc.o, layout.SuiteConfig{
		Scale: scale, Seed: seed, Workers: sc.workers})
	if err != nil {
		return nil, err
	}
	sc.scale, sc.seed, sc.designs = scale, seed, designs
	return designs, nil
}

// runCheck loads both baselines, reruns their measurements at the
// baselines' own (scale, seed), gates every field, and returns an error
// listing the violations, if any.
func runCheck(o *obs.Context, workers int, scoringPath, trainPath string, tol float64) error {
	if tol <= 0 || tol >= 1 {
		return fmt.Errorf("benchgen -check: -tolerance %g out of range (0, 1)", tol)
	}
	suite := &suiteCache{o: o, workers: workers}
	chk := &checker{}

	var scoringBase scoringDoc
	if err := loadBaseline(scoringPath, &scoringBase); err != nil {
		return err
	}
	designs, err := suite.get(scoringBase.Scale, scoringBase.Seed)
	if err != nil {
		return err
	}
	fmt.Printf("checking %s (scale %g, seed %d, tolerance %.0f%%)\n",
		scoringPath, scoringBase.Scale, scoringBase.Seed, tol*100)
	cur, err := measureScoring(designs, scoringBase.Scale, scoringBase.Seed)
	if err != nil {
		return err
	}
	chk.exact("instance_prep.designs", int64(scoringBase.InstancePrep.Designs), int64(cur.InstancePrep.Designs))
	checkConfigs(chk, "scoring", configNames(scoringBase.Configs), configNames(cur.Configs))
	for i, base := range scoringBase.Configs {
		if i >= len(cur.Configs) || cur.Configs[i].Config != base.Config {
			continue
		}
		got := cur.Configs[i]
		pfx := "scoring." + base.Config + "."
		chk.exact(pfx+"pairs", base.Pairs, got.Pairs)
		chk.exact(pfx+"batches", base.Batches, got.Batches)
		chk.exact(pfx+"batch_rows", base.BatchRows, got.BatchRows)
		chk.floor(pfx+"speedup", base.Speedup, got.Speedup, tol)
		chk.ceiling(pfx+"scalar_mallocs_per_pair", base.ScalarMallocsPerPair, got.ScalarMallocsPerPair, tol)
		chk.ceiling(pfx+"batch_mallocs_per_pair", base.BatchMallocsPerPair, got.BatchMallocsPerPair, tol)
	}

	var trainBase trainDoc
	if err := loadBaseline(trainPath, &trainBase); err != nil {
		return err
	}
	designs, err = suite.get(trainBase.Scale, trainBase.Seed)
	if err != nil {
		return err
	}
	fmt.Printf("checking %s (scale %g, seed %d, tolerance %.0f%%)\n",
		trainPath, trainBase.Scale, trainBase.Seed, tol*100)
	curTrain, err := measureTrain(designs, trainBase.Scale, trainBase.Seed)
	if err != nil {
		return err
	}
	checkConfigs(chk, "train", trainConfigNames(trainBase.Configs), trainConfigNames(curTrain.Configs))
	for i, base := range trainBase.Configs {
		if i >= len(curTrain.Configs) || curTrain.Configs[i].Config != base.Config {
			continue
		}
		got := curTrain.Configs[i]
		pfx := "train." + base.Config + "."
		chk.exact(pfx+"samples", int64(base.Samples), int64(got.Samples))
		chk.exact(pfx+"trees", int64(base.Trees), int64(got.Trees))
		chk.exact(pfx+"artifact_bytes", int64(base.ArtifactBytes), int64(got.ArtifactBytes))
		chk.floor(pfx+"warm_load_speedup", base.Speedup, got.Speedup, tol)
	}

	if err := checkIndustrial(chk, o, workers, scoringBase.Industrial, trainBase.Industrial, tol); err != nil {
		return err
	}

	if len(chk.violations) > 0 {
		fmt.Printf("\nperf gate: %d of %d checks FAILED\n", len(chk.violations), chk.checks)
		return fmt.Errorf("benchgen -check: %d regression(s):\n  %s",
			len(chk.violations), joinLines(chk.violations))
	}
	fmt.Printf("\nperf gate: all %d checks passed\n", chk.checks)
	return nil
}

// checkIndustrial reruns the industrial-tier measurement once and gates
// both baselines' industrial sections against it: the evaluation digest and
// every count exactly (cross-machine bit-identity), the allocation rates
// and peak heap by ceiling (the tier's memory envelope). Baselines written
// before the tier existed carry no industrial section and skip the stage.
func checkIndustrial(chk *checker, o *obs.Context, workers int,
	scoringBase *industrialScoringEntry, trainBase *industrialTrainEntry, tol float64) error {

	if scoringBase == nil && trainBase == nil {
		return nil
	}
	scale, seed := 0.0, int64(0)
	if scoringBase != nil {
		scale, seed = scoringBase.Scale, scoringBase.Seed
	} else {
		scale, seed = trainBase.Scale, trainBase.Seed
	}
	// The allocation rates scale with the worker count (per-worker arenas
	// and heaps amortize over a fixed v-pin count), so the measurement
	// reruns at the worker count the baseline recorded — the exact fields
	// are worker-invariant either way (pinned by the shard-invariance
	// tests), and the ceilings stay comparable on any runner.
	if scoringBase != nil && scoringBase.Workers > 0 {
		if workers != scoringBase.Workers {
			fmt.Printf("industrial stage measures at the baseline's recorded -workers %d\n", scoringBase.Workers)
		}
		workers = scoringBase.Workers
	}
	fmt.Printf("checking industrial tier (scale %g, seed %d; single fold, takes a few minutes)\n", scale, seed)
	curScoring, curTrain, err := measureIndustrial(o, workers, scale, seed)
	if err != nil {
		return err
	}
	if scoringBase != nil {
		chk.exactStr("industrial.design", scoringBase.Design, curScoring.Design)
		chk.exact("industrial.cells", int64(scoringBase.Cells), int64(curScoring.Cells))
		chk.exact("industrial.vpins", int64(scoringBase.VPins), int64(curScoring.VPins))
		chk.exactStr("industrial.eval_digest", scoringBase.EvalDigest, curScoring.EvalDigest)
		chk.exact("industrial.pairs", scoringBase.Pairs, curScoring.Pairs)
		chk.exact("industrial.batches", scoringBase.Batches, curScoring.Batches)
		chk.exact("industrial.batch_rows", scoringBase.BatchRows, curScoring.BatchRows)
		chk.exact("industrial.regions", int64(scoringBase.Regions), int64(curScoring.Regions))
		chk.exact("industrial.retained", scoringBase.Retained, curScoring.Retained)
		chk.ceiling("industrial.mallocs_per_vpin", scoringBase.MallocsPerVpin, curScoring.MallocsPerVpin, tol)
		chk.ceiling("industrial.alloc_bytes_per_pair", scoringBase.AllocBytesPerPair, curScoring.AllocBytesPerPair, tol)
		chk.ceiling("industrial.peak_heap_bytes",
			float64(scoringBase.PeakHeapBytes), float64(curScoring.PeakHeapBytes), tol)
	}
	if trainBase != nil {
		chk.exact("industrial.samples", int64(trainBase.Samples), int64(curTrain.Samples))
		chk.exact("industrial.trees", int64(trainBase.Trees), int64(curTrain.Trees))
		chk.exact("industrial.artifact_bytes", int64(trainBase.ArtifactBytes), int64(curTrain.ArtifactBytes))
	}
	return nil
}

// checkConfigs gates the config lists matching by name and order.
func checkConfigs(chk *checker, kind string, base, cur []string) {
	chk.checks++
	if fmt.Sprint(base) == fmt.Sprint(cur) {
		fmt.Printf("  ok    %-44s %v\n", kind+".configs", cur)
		return
	}
	v := fmt.Sprintf("%s.configs: measured %v, baseline %v", kind, cur, base)
	chk.violations = append(chk.violations, v)
	fmt.Printf("  FAIL  %-44s %v, baseline %v\n", kind+".configs", cur, base)
}

func configNames(entries []scoringBenchEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Config
	}
	return out
}

func trainConfigNames(entries []trainBenchEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Config
	}
	return out
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
