// Command benchgen generates the synthetic benchmark suite and prints its
// vital statistics: per-design sizes, trunk-layer populations, and v-pin
// counts per split layer — the quantities that determine attack difficulty.
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a JSON run report with
// per-design generation spans, -metrics dumps the metrics registry, and
// -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/split"
	"repro/internal/timing"
)

func main() {
	scale := flag.Float64("scale", 1.0, "suite scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("o", "", "directory to write <design>.sml files to")
	var cli obs.CLI
	cli.Register(flag.CommandLine)
	flag.Parse()

	if cli.ShowVersion {
		fmt.Println("benchgen", obs.Version())
		return
	}
	o, err := cli.Setup("benchgen")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	designs, err := layout.GenerateSuiteObs(o, layout.SuiteConfig{Scale: *scale, Seed: *seed, Workers: cli.Workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, d := range designs {
			path := filepath.Join(*out, d.Name+".sml")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := layout.Save(f, d); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcells\tnets\tdie\tvpins@8\tvpins@6\tvpins@4\tmeanMatchDist@6")
	designStats := []map[string]any{}
	for _, d := range designs {
		row := fmt.Sprintf("%s\t%d\t%d\t%dx%d", d.Name,
			len(d.Netlist.Cells), len(d.Netlist.Nets), d.Die().Width(), d.Die().Height())
		stats := map[string]any{
			"name": d.Name, "cells": len(d.Netlist.Cells), "nets": len(d.Netlist.Nets),
		}
		var dist6 float64
		for _, layer := range []int{8, 6, 4} {
			ch, err := split.NewChallengeObs(o, d, layer)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			row += fmt.Sprintf("\t%d", len(ch.VPins))
			stats[fmt.Sprintf("vpins@%d", layer)] = len(ch.VPins)
			if layer == 6 {
				dist6 = ch.Summary().MeanMatchDist
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\n", row, dist6)
		designStats = append(designStats, stats)
	}
	tw.Flush()

	fmt.Println("\nTrunk-layer populations (nets per top metal layer):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprint(tw, "design")
	for m := 2; m <= route.NumMetal; m++ {
		fmt.Fprintf(tw, "\tM%d", m)
	}
	fmt.Fprintln(tw)
	for _, d := range designs {
		pop := d.Routing.LayerPopulation()
		fmt.Fprint(tw, d.Name)
		for m := 2; m <= route.NumMetal; m++ {
			fmt.Fprintf(tw, "\t%d", pop[m])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Printf("\nPer-layer routing utilisation (%s):\n", designs[0].Name)
	route.WriteStats(os.Stdout, designs[0].Routing.Stats())

	fmt.Println("\nStatic timing summary:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tmean delay\tmax delay\toverloaded drivers")
	for _, d := range designs {
		dt := timing.Analyze(d)
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%d\n", d.Name, dt.MeanDelay, dt.MaxDelay, dt.OverloadedDrivers)
	}
	tw.Flush()

	configMap := map[string]any{"scale": *scale, "seed": *seed, "workers": cli.Workers}
	summary := map[string]any{"designs": designStats}
	if err := cli.Finish(o, configMap, summary); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
