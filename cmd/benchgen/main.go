// Command benchgen generates the synthetic benchmark suite and prints its
// vital statistics: per-design sizes, trunk-layer populations, and v-pin
// counts per split layer — the quantities that determine attack difficulty.
//
// It also owns the repository's perf baselines: -scoring-bench / -train-bench
// measure pair-scoring throughput and the train-once/score-many trade and
// write them to BENCH_scoring.json / BENCH_train.json, and -check reruns
// those measurements against the committed baselines and fails on
// regression beyond -tolerance (see check.go for what is gated exactly vs.
// by same-machine ratio). CI runs the -check gate on every push.
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a JSON run report with
// per-design generation spans, -metrics dumps the metrics registry,
// -serve-obs serves live telemetry, -trace writes a Chrome trace, and
// -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/layout"
	"repro/internal/route"
	"repro/internal/split"
	"repro/internal/timing"
)

func main() {
	fs := flag.NewFlagSet("benchgen", flag.ExitOnError)
	app := cli.New("benchgen", fs)
	out := fs.String("o", "", "directory to write <design>.sml files to")
	scoringBench := fs.String("scoring-bench", "",
		"measure pair-scoring throughput (scalar oracle vs batched arena) on the generated suite and write the baseline JSON to this file, e.g. BENCH_scoring.json")
	trainBench := fs.String("train-bench", "",
		"measure cold-train vs warm artifact-load timings on the generated suite and write the baseline JSON to this file, e.g. BENCH_train.json")
	check := fs.Bool("check", false,
		"perf gate: rerun the benches and fail on regression against the committed baselines (paths from -scoring-bench/-train-bench, defaulting to BENCH_scoring.json/BENCH_train.json)")
	tolerance := fs.Float64("tolerance", 0.5,
		"-check tolerance on same-machine ratio metrics: speedups may drop to baseline*(1-t), allocation rates may grow to baseline*(1+t); exact fields always must match")
	o := app.Parse(os.Args[1:])

	if *check {
		scoringPath, trainPath := *scoringBench, *trainBench
		if scoringPath == "" {
			scoringPath = "BENCH_scoring.json"
		}
		if trainPath == "" {
			trainPath = "BENCH_train.json"
		}
		if err := runCheck(o, app.Workers(), scoringPath, trainPath, *tolerance); err != nil {
			cli.Fatal(err)
		}
		app.Finish(o, map[string]any{"check": true, "tolerance": *tolerance},
			map[string]any{"perf_gate": "pass"})
		return
	}

	designs, err := layout.GenerateSuiteObs(o, layout.SuiteConfig{
		Tier: app.Tier, Scale: app.Scale, Seed: app.Seed, Workers: app.Workers()})
	if err != nil {
		cli.Fatal(err)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			cli.Fatal(err)
		}
		for _, d := range designs {
			path := filepath.Join(*out, d.Name+".sml")
			f, err := os.Create(path)
			if err != nil {
				cli.Fatal(err)
			}
			if err := layout.Save(f, d); err != nil {
				f.Close()
				cli.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcells\tnets\tdie\tvpins@8\tvpins@6\tvpins@4\tmeanMatchDist@6")
	designStats := []map[string]any{}
	for _, d := range designs {
		row := fmt.Sprintf("%s\t%d\t%d\t%dx%d", d.Name,
			len(d.Netlist.Cells), len(d.Netlist.Nets), d.Die().Width(), d.Die().Height())
		stats := map[string]any{
			"name": d.Name, "cells": len(d.Netlist.Cells), "nets": len(d.Netlist.Nets),
		}
		var dist6 float64
		for _, layer := range []int{8, 6, 4} {
			ch, err := split.NewChallengeObs(o, d, layer)
			if err != nil {
				cli.Fatal(err)
			}
			row += fmt.Sprintf("\t%d", len(ch.VPins))
			stats[fmt.Sprintf("vpins@%d", layer)] = len(ch.VPins)
			if layer == 6 {
				dist6 = ch.Summary().MeanMatchDist
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\n", row, dist6)
		designStats = append(designStats, stats)
	}
	tw.Flush()

	fmt.Println("\nTrunk-layer populations (nets per top metal layer):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprint(tw, "design")
	for m := 2; m <= route.NumMetal; m++ {
		fmt.Fprintf(tw, "\tM%d", m)
	}
	fmt.Fprintln(tw)
	for _, d := range designs {
		pop := d.Routing.LayerPopulation()
		fmt.Fprint(tw, d.Name)
		for m := 2; m <= route.NumMetal; m++ {
			fmt.Fprintf(tw, "\t%d", pop[m])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Printf("\nPer-layer routing utilisation (%s):\n", designs[0].Name)
	route.WriteStats(os.Stdout, designs[0].Routing.Stats())

	fmt.Println("\nStatic timing summary:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tmean delay\tmax delay\toverloaded drivers")
	for _, d := range designs {
		dt := timing.Analyze(d)
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%d\n", d.Name, dt.MeanDelay, dt.MaxDelay, dt.OverloadedDrivers)
	}
	tw.Flush()

	// Both baselines measure the standard suite; the industrial tier is
	// measured once (its own suite, its own memory-bounded configuration)
	// and contributes a section to each document.
	var indScoring *industrialScoringEntry
	var indTrain *industrialTrainEntry
	if *scoringBench != "" || *trainBench != "" {
		fmt.Println("\nmeasuring industrial tier (single fold; takes a few minutes)...")
		indScoring, indTrain, err = measureIndustrial(o, app.Workers(), app.Scale, app.Seed)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("industrial %s: %d cells, %d v-pins, %d regions, peak heap %.0f MB, est. full LOO %.0fs\n",
			indScoring.Design, indScoring.Cells, indScoring.VPins, indScoring.Regions,
			float64(indScoring.PeakHeapBytes)/1e6, indScoring.EstimatedLooS)
	}
	if *scoringBench != "" {
		doc, err := measureScoring(designs, app.Scale, app.Seed)
		if err != nil {
			cli.Fatal(err)
		}
		doc.Industrial = indScoring
		if err := writeBaseline(*scoringBench, doc); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("\nwrote scoring baseline to %s\n", *scoringBench)
	}
	if *trainBench != "" {
		doc, err := measureTrain(designs, app.Scale, app.Seed)
		if err != nil {
			cli.Fatal(err)
		}
		doc.Industrial = indTrain
		if err := writeBaseline(*trainBench, doc); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("\nwrote training baseline to %s\n", *trainBench)
	}

	summary := map[string]any{"designs": designStats}
	app.Finish(o, nil, summary)
}
