// Command benchgen generates the synthetic benchmark suite and prints its
// vital statistics: per-design sizes, trunk-layer populations, and v-pin
// counts per split layer — the quantities that determine attack difficulty.
//
// Observability is opt-in: -v streams structured span logs to stderr
// (-log-format text|json), -report writes a JSON run report with
// per-design generation spans, -metrics dumps the metrics registry, and
// -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/attack"
	"repro/internal/cli"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/route"
	"repro/internal/split"
	"repro/internal/timing"
)

func main() {
	fs := flag.NewFlagSet("benchgen", flag.ExitOnError)
	app := cli.New("benchgen", fs)
	out := fs.String("o", "", "directory to write <design>.sml files to")
	scoringBench := fs.String("scoring-bench", "",
		"measure pair-scoring throughput (scalar oracle vs batched arena) on the generated suite and write the baseline JSON to this file, e.g. BENCH_scoring.json")
	trainBench := fs.String("train-bench", "",
		"measure cold-train vs warm artifact-load timings on the generated suite and write the baseline JSON to this file, e.g. BENCH_train.json")
	o := app.Parse(os.Args[1:])

	designs, err := layout.GenerateSuiteObs(o, layout.SuiteConfig{
		Scale: app.Scale, Seed: app.Seed, Workers: app.Workers()})
	if err != nil {
		cli.Fatal(err)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			cli.Fatal(err)
		}
		for _, d := range designs {
			path := filepath.Join(*out, d.Name+".sml")
			f, err := os.Create(path)
			if err != nil {
				cli.Fatal(err)
			}
			if err := layout.Save(f, d); err != nil {
				f.Close()
				cli.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcells\tnets\tdie\tvpins@8\tvpins@6\tvpins@4\tmeanMatchDist@6")
	designStats := []map[string]any{}
	for _, d := range designs {
		row := fmt.Sprintf("%s\t%d\t%d\t%dx%d", d.Name,
			len(d.Netlist.Cells), len(d.Netlist.Nets), d.Die().Width(), d.Die().Height())
		stats := map[string]any{
			"name": d.Name, "cells": len(d.Netlist.Cells), "nets": len(d.Netlist.Nets),
		}
		var dist6 float64
		for _, layer := range []int{8, 6, 4} {
			ch, err := split.NewChallengeObs(o, d, layer)
			if err != nil {
				cli.Fatal(err)
			}
			row += fmt.Sprintf("\t%d", len(ch.VPins))
			stats[fmt.Sprintf("vpins@%d", layer)] = len(ch.VPins)
			if layer == 6 {
				dist6 = ch.Summary().MeanMatchDist
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\n", row, dist6)
		designStats = append(designStats, stats)
	}
	tw.Flush()

	fmt.Println("\nTrunk-layer populations (nets per top metal layer):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprint(tw, "design")
	for m := 2; m <= route.NumMetal; m++ {
		fmt.Fprintf(tw, "\tM%d", m)
	}
	fmt.Fprintln(tw)
	for _, d := range designs {
		pop := d.Routing.LayerPopulation()
		fmt.Fprint(tw, d.Name)
		for m := 2; m <= route.NumMetal; m++ {
			fmt.Fprintf(tw, "\t%d", pop[m])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Printf("\nPer-layer routing utilisation (%s):\n", designs[0].Name)
	route.WriteStats(os.Stdout, designs[0].Routing.Stats())

	fmt.Println("\nStatic timing summary:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tmean delay\tmax delay\toverloaded drivers")
	for _, d := range designs {
		dt := timing.Analyze(d)
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%d\n", d.Name, dt.MeanDelay, dt.MaxDelay, dt.OverloadedDrivers)
	}
	tw.Flush()

	if *scoringBench != "" {
		if err := writeScoringBench(*scoringBench, designs, app.Scale, app.Seed); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("\nwrote scoring baseline to %s\n", *scoringBench)
	}
	if *trainBench != "" {
		if err := writeTrainBench(*trainBench, designs, app.Scale, app.Seed); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("\nwrote training baseline to %s\n", *trainBench)
	}

	summary := map[string]any{"designs": designStats}
	app.Finish(o, nil, summary)
}

// scoringBenchEntry is one config's scalar-vs-batch scoring measurement in
// the BENCH_scoring.json baseline.
type scoringBenchEntry struct {
	Config string `json:"config"`
	// Pairs is the number of candidate pairs scored for the measured target.
	Pairs int64 `json:"pairs"`
	// ScalarPairsPerSec and BatchPairsPerSec are the scoring-phase
	// throughputs (Evaluation.TestDur over PairsScored) of the per-pair
	// oracle and the batched arena path.
	ScalarPairsPerSec float64 `json:"scalar_pairs_per_sec"`
	BatchPairsPerSec  float64 `json:"batch_pairs_per_sec"`
	Speedup           float64 `json:"speedup"`
	// Batches and BatchRows are the batch path's ProbBatch call and row
	// counts (level 1 + level 2).
	Batches   int64 `json:"batches"`
	BatchRows int64 `json:"batch_rows"`
	// MallocsPerPair is the heap-allocation count of the whole target run
	// (training included) divided by the pairs scored, per path — a coarse
	// trajectory metric; the steady-state scoring loop itself allocates
	// nothing on the batch path (guarded by testing.AllocsPerRun in
	// internal/attack).
	ScalarMallocsPerPair float64 `json:"scalar_mallocs_per_pair"`
	BatchMallocsPerPair  float64 `json:"batch_mallocs_per_pair"`
}

// writeScoringBench trains and scores one leave-one-out target per standard
// configuration at split layer 6, once through the scalar oracle and once
// through the batched arena path, and writes the throughput baseline.
func writeScoringBench(path string, designs []*layout.Design, scale float64, seed int64) error {
	chs := make([]*split.Challenge, 0, len(designs))
	for _, d := range designs {
		c, err := split.NewChallenge(d, 6)
		if err != nil {
			return err
		}
		chs = append(chs, c)
	}
	// Instance preparation (feature extractors + spatial pair indexes) is
	// the fixed cost every attack run pays before scoring; measure the
	// serial build against the parallel one so cache and fan-out wins show
	// up in the perf trajectory.
	t0 := time.Now()
	attack.NewInstancesWorkers(chs, 1)
	serialNs := time.Since(t0).Nanoseconds()
	t0 = time.Now()
	attack.NewInstancesWorkers(chs, 0)
	parallelNs := time.Since(t0).Nanoseconds()

	twoLevel := attack.WithTwoLevel(attack.Imp11())
	twoLevel.Name += "-2L"
	configs := []attack.Config{attack.ML9(), attack.Imp11(), twoLevel}
	entries := make([]scoringBenchEntry, 0, len(configs))
	for _, cfg := range configs {
		cfg.Seed = seed
		entry := scoringBenchEntry{Config: cfg.Name}
		for _, scalar := range []bool{true, false} {
			c := cfg
			c.ScalarScoring = scalar
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			ev, _, err := attack.RunTarget(c, chs, 0)
			runtime.ReadMemStats(&after)
			if err != nil {
				return fmt.Errorf("scoring bench %s: %w", c.Name, err)
			}
			pps := float64(ev.PairsScored) / ev.TestDur.Seconds()
			mallocs := float64(after.Mallocs-before.Mallocs) / float64(ev.PairsScored)
			if scalar {
				entry.Pairs = ev.PairsScored
				entry.ScalarPairsPerSec = pps
				entry.ScalarMallocsPerPair = mallocs
			} else {
				entry.BatchPairsPerSec = pps
				entry.BatchMallocsPerPair = mallocs
				entry.Batches = ev.Batches
				entry.BatchRows = ev.BatchRows
			}
		}
		entry.Speedup = entry.BatchPairsPerSec / entry.ScalarPairsPerSec
		entries = append(entries, entry)
	}
	doc := map[string]any{
		"scale":       scale,
		"seed":        seed,
		"split_layer": 6,
		"instance_prep": map[string]any{
			"designs":     len(chs),
			"serial_ns":   serialNs,
			"parallel_ns": parallelNs,
			"speedup":     float64(serialNs) / float64(parallelNs),
		},
		"configs": entries,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// trainBenchEntry is one config's cold-train vs warm-load measurement in
// the BENCH_train.json baseline.
type trainBenchEntry struct {
	Config string `json:"config"`
	// ColdTrainNs is a full in-process model.Train for fold 0: sampling,
	// level-1 ensemble training, and (for two-level configs) the pruning
	// stage.
	ColdTrainNs int64 `json:"cold_train_ns"`
	// EncodeNs and ArtifactBytes measure MarshalBinary on the trained
	// artifact; WarmLoadNs measures UnmarshalArtifact on the same blob —
	// the cost an `attack -model` run pays instead of ColdTrainNs.
	EncodeNs      int64 `json:"encode_ns"`
	ArtifactBytes int   `json:"artifact_bytes"`
	WarmLoadNs    int64 `json:"warm_load_ns"`
	// StoreMissNs and StoreHitNs are Store.GetOrTrain timings for the same
	// spec: the first call trains, the second is served from the LRU.
	StoreMissNs int64 `json:"store_miss_ns"`
	StoreHitNs  int64 `json:"store_hit_ns"`
	// Speedup is ColdTrainNs over WarmLoadNs: how much faster a sweep
	// resumes when the fold's artifact is already on disk.
	Speedup float64 `json:"speedup"`
	Samples int     `json:"samples"`
	Trees   int     `json:"trees"`
}

// writeTrainBench measures the train-once/score-many trade for fold 0 at
// split layer 6: a cold in-process train, the artifact codec round-trip,
// and a Store miss/hit pair, per standard configuration.
func writeTrainBench(path string, designs []*layout.Design, scale float64, seed int64) error {
	chs := make([]*split.Challenge, 0, len(designs))
	for _, d := range designs {
		c, err := split.NewChallenge(d, 6)
		if err != nil {
			return err
		}
		chs = append(chs, c)
	}
	insts := attack.NewInstancesWorkers(chs, 0)

	twoLevel := attack.WithTwoLevel(attack.Imp11())
	twoLevel.Name += "-2L"
	configs := []attack.Config{attack.Imp11(), twoLevel}
	entries := make([]trainBenchEntry, 0, len(configs))
	for _, cfg := range configs {
		cfg.Seed = seed
		spec, _, err := attack.TrainSpec(cfg, insts, 0)
		if err != nil {
			return fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}

		t0 := time.Now()
		art, _, err := model.Train(spec)
		if err != nil {
			return fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		coldNs := time.Since(t0).Nanoseconds()

		t0 = time.Now()
		blob, err := art.MarshalBinary()
		if err != nil {
			return fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		encodeNs := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if _, err := model.UnmarshalArtifact(blob); err != nil {
			return fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		warmNs := time.Since(t0).Nanoseconds()

		store := model.NewStore(0, "")
		t0 = time.Now()
		if _, _, err := store.GetOrTrain(spec); err != nil {
			return fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		missNs := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if _, _, err := store.GetOrTrain(spec); err != nil {
			return fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		hitNs := time.Since(t0).Nanoseconds()

		entries = append(entries, trainBenchEntry{
			Config:        cfg.Name,
			ColdTrainNs:   coldNs,
			EncodeNs:      encodeNs,
			ArtifactBytes: len(blob),
			WarmLoadNs:    warmNs,
			StoreMissNs:   missNs,
			StoreHitNs:    hitNs,
			Speedup:       float64(coldNs) / float64(warmNs),
			Samples:       art.Meta.Samples,
			Trees:         art.Meta.Trees,
		})
	}
	doc := map[string]any{
		"scale":       scale,
		"seed":        seed,
		"split_layer": 6,
		"fold":        0,
		"configs":     entries,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
