// Industrial-tier perf baseline: one leave-one-out attack on the 100k+-cell
// sbx1 design, measured with the memory-bounded streaming configuration the
// tier is built for (absolute LoC cap + pinned spatial shard size). The
// measurement contributes a section to both baseline documents: the scoring
// side (digest, pair/region/retention counts, allocation rates, peak heap)
// to BENCH_scoring.json and the training side (samples, trees, artifact
// bytes) to BENCH_train.json.
//
// The shard size is pinned rather than automatic so the region count is a
// deterministic function of (scale, seed) and can be gated exactly across
// machines, alongside the evaluation digest — the strongest cross-machine
// bit-identity check the repository has.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/split"
)

const (
	// industrialConfigName is the measured attack configuration.
	industrialConfigName = "Imp-11"
	// industrialMaxLoC is the absolute per-v-pin retention cap. At ~30k
	// v-pins the default 0.15 fraction would retain gigabytes; 256 keeps
	// the evaluation tens of megabytes without touching FCR/LoC metrics
	// inside the retained bound.
	industrialMaxLoC = 256
	// industrialShard pins the spatial-region size so the region count is
	// machine-independent and exact-gateable.
	industrialShard = 2048
)

// industrialScoringEntry is the industrial section of BENCH_scoring.json.
type industrialScoringEntry struct {
	Tier        string  `json:"tier"`
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	SplitLayer  int     `json:"split_layer"`
	Design      string  `json:"design"`
	Cells       int     `json:"cells"`
	VPins       int     `json:"vpins"`
	Config      string  `json:"config"`
	MaxLoCCount int     `json:"max_loc_count"`
	ShardVpins  int     `json:"shard_vpins"`
	// Workers is the effective worker count the allocation rates were
	// measured at. Startup allocations (one arena and one retention heap
	// per worker) amortize over the same v-pin count, so the rates scale
	// with the worker count; `-check` reruns the measurement at this
	// recorded count so the ceilings compare like for like on any machine.
	Workers int `json:"workers"`
	// EvalDigest through Retained are deterministic functions of
	// (scale, seed) and are gated exactly: a mismatch on any machine means
	// the engine's results changed.
	EvalDigest string `json:"eval_digest"`
	Pairs      int64  `json:"pairs"`
	Batches    int64  `json:"batches"`
	BatchRows  int64  `json:"batch_rows"`
	Regions    int    `json:"regions"`
	Retained   int64  `json:"retained"`
	// MallocsPerVpin and AllocBytesPerPair are allocation rates of the
	// scoring stage (heap allocation count per target v-pin, allocated
	// bytes per scored pair); ceiling-gated.
	MallocsPerVpin    float64 `json:"mallocs_per_vpin"`
	AllocBytesPerPair float64 `json:"alloc_bytes_per_pair"`
	// PeakHeapBytes is the highest live-heap sample observed during
	// scoring — the tier's memory envelope; ceiling-gated.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// Wall-clock trajectory, recorded but never gated.
	GenNs         int64   `json:"gen_ns"`
	ScoreNs       int64   `json:"score_ns"`
	PairsPerSec   float64 `json:"pairs_per_sec"`
	RadiusNorm    float64 `json:"radius_norm"`
	EstimatedLooS float64 `json:"estimated_loo_s"`
}

// industrialTrainEntry is the industrial section of BENCH_train.json.
type industrialTrainEntry struct {
	Tier        string  `json:"tier"`
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	SplitLayer  int     `json:"split_layer"`
	Design      string  `json:"design"`
	Config      string  `json:"config"`
	MaxLoCCount int     `json:"max_loc_count"`
	// Samples, Trees, and ArtifactBytes are exact-gated.
	Samples       int   `json:"samples"`
	Trees         int   `json:"trees"`
	ArtifactBytes int   `json:"artifact_bytes"`
	ColdTrainNs   int64 `json:"cold_train_ns"`
}

// industrialConfig is the measured configuration: Imp-11 with the absolute
// retention cap and pinned shard size.
func industrialConfig(seed int64, workers int) attack.Config {
	cfg := attack.Imp11()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.MaxLoCCount = industrialMaxLoC
	cfg.ShardVpins = industrialShard
	return cfg
}

// heapWatcher samples the live heap until stopped and reports the peak.
type heapWatcher struct {
	peak atomic.Uint64
	done chan struct{}
	wg   sync.WaitGroup
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{done: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-w.done:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak.Load() {
					w.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return w
}

// stop ends sampling and returns the peak live-heap estimate.
func (w *heapWatcher) stop() uint64 {
	close(w.done)
	w.wg.Wait()
	return w.peak.Load()
}

// measureIndustrial generates the industrial suite and runs the single
// leave-one-out measurement: a timed cold train (the train entry) followed
// by a timed artifact-scored attack under the heap watcher (the scoring
// entry). Training once and scoring from the artifact keeps the expensive
// 100k-cell train from running twice.
func measureIndustrial(o *obs.Context, workers int, scale float64, seed int64) (*industrialScoringEntry, *industrialTrainEntry, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t0 := time.Now()
	designs, err := layout.GenerateSuiteObs(o, layout.SuiteConfig{
		Tier: layout.TierIndustrial, Scale: scale, Seed: seed, Workers: workers})
	if err != nil {
		return nil, nil, fmt.Errorf("industrial bench: %w", err)
	}
	genNs := time.Since(t0).Nanoseconds()

	chs := make([]*split.Challenge, len(designs))
	for i, d := range designs {
		if chs[i], err = split.NewChallengeObs(o, d, benchSplitLayer); err != nil {
			return nil, nil, fmt.Errorf("industrial bench: %w", err)
		}
	}
	insts := attack.NewInstancesWorkers(chs, workers)
	cfg := industrialConfig(seed, workers)

	spec, _, err := attack.TrainSpec(cfg, insts, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("industrial bench: %w", err)
	}
	t0 = time.Now()
	art, _, err := model.Train(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("industrial bench: %w", err)
	}
	coldNs := time.Since(t0).Nanoseconds()
	blob, err := art.MarshalBinary()
	if err != nil {
		return nil, nil, fmt.Errorf("industrial bench: %w", err)
	}

	watcher := watchHeap()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ev, radiusNorm, err := attack.RunTargetArtifact(cfg, insts, 0, art)
	runtime.ReadMemStats(&after)
	peak := watcher.stop()
	if err != nil {
		return nil, nil, fmt.Errorf("industrial bench: %w", err)
	}

	target := designs[0]
	scoring := &industrialScoringEntry{
		Tier:       layout.TierIndustrial,
		Scale:      scale,
		Seed:       seed,
		SplitLayer: benchSplitLayer,
		Design:     target.Name,
		Cells:      len(target.Netlist.Cells),
		VPins:      ev.N,
		Config:     cfg.Name, MaxLoCCount: cfg.MaxLoCCount, ShardVpins: cfg.ShardVpins,
		Workers:    workers,
		EvalDigest: ev.Digest(),
		Pairs:      ev.PairsScored, Batches: ev.Batches, BatchRows: ev.BatchRows,
		Regions: ev.Regions, Retained: ev.Retained,
		MallocsPerVpin:    float64(after.Mallocs-before.Mallocs) / float64(ev.N),
		AllocBytesPerPair: float64(after.TotalAlloc-before.TotalAlloc) / float64(ev.PairsScored),
		PeakHeapBytes:     peak,
		GenNs:             genNs,
		ScoreNs:           ev.TestDur.Nanoseconds(),
		PairsPerSec:       float64(ev.PairsScored) / ev.TestDur.Seconds(),
		RadiusNorm:        radiusNorm,
		EstimatedLooS:     estimateLooSeconds(insts, coldNs, ev),
	}
	train := &industrialTrainEntry{
		Tier:       layout.TierIndustrial,
		Scale:      scale,
		Seed:       seed,
		SplitLayer: benchSplitLayer,
		Design:     target.Name,
		Config:     cfg.Name, MaxLoCCount: cfg.MaxLoCCount,
		Samples: art.Meta.Samples, Trees: art.Meta.Trees,
		ArtifactBytes: len(blob),
		ColdTrainNs:   coldNs,
	}
	return scoring, train, nil
}

// estimateLooSeconds extrapolates the measured single-fold train+score time
// to the full leave-one-out sweep, scaling the scoring side by each fold's
// target v-pin count (scoring work is near-linear in it at a fixed radius).
func estimateLooSeconds(insts []*attack.Instance, coldNs int64, ev *attack.Evaluation) float64 {
	perVpinNs := float64(ev.TestDur.Nanoseconds()) / float64(ev.N)
	total := 0.0
	for _, inst := range insts {
		total += float64(coldNs) + perVpinNs*float64(len(inst.Ch.VPins))
	}
	return total / 1e9
}
