package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/split"
)

// benchSplitLayer is the split layer both perf baselines are measured at.
const benchSplitLayer = 6

// scoringDoc is the BENCH_scoring.json baseline document.
type scoringDoc struct {
	Scale        float64             `json:"scale"`
	Seed         int64               `json:"seed"`
	SplitLayer   int                 `json:"split_layer"`
	InstancePrep instancePrepDoc     `json:"instance_prep"`
	Configs      []scoringBenchEntry `json:"configs"`
	// Industrial is the 100k+-cell tier's streamed-scoring measurement
	// (see industrial.go); absent in baselines written before the tier
	// existed.
	Industrial *industrialScoringEntry `json:"industrial,omitempty"`
}

// instancePrepDoc measures the fixed per-run instance-preparation cost
// (feature extractors + spatial pair indexes), serial vs parallel.
type instancePrepDoc struct {
	Designs    int     `json:"designs"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// scoringBenchEntry is one config's scalar-vs-batch scoring measurement in
// the BENCH_scoring.json baseline.
type scoringBenchEntry struct {
	Config string `json:"config"`
	// Pairs is the number of candidate pairs scored for the measured target.
	Pairs int64 `json:"pairs"`
	// ScalarPairsPerSec and BatchPairsPerSec are the scoring-phase
	// throughputs (Evaluation.TestDur over PairsScored) of the per-pair
	// oracle and the batched arena path.
	ScalarPairsPerSec float64 `json:"scalar_pairs_per_sec"`
	BatchPairsPerSec  float64 `json:"batch_pairs_per_sec"`
	Speedup           float64 `json:"speedup"`
	// Batches and BatchRows are the batch path's ProbBatch call and row
	// counts (level 1 + level 2).
	Batches   int64 `json:"batches"`
	BatchRows int64 `json:"batch_rows"`
	// MallocsPerPair is the heap-allocation count of the whole target run
	// (training included) divided by the pairs scored, per path — a coarse
	// trajectory metric; the steady-state scoring loop itself allocates
	// nothing on the batch path (guarded by testing.AllocsPerRun in
	// internal/attack).
	ScalarMallocsPerPair float64 `json:"scalar_mallocs_per_pair"`
	BatchMallocsPerPair  float64 `json:"batch_mallocs_per_pair"`
}

// trainDoc is the BENCH_train.json baseline document.
type trainDoc struct {
	Scale      float64           `json:"scale"`
	Seed       int64             `json:"seed"`
	SplitLayer int               `json:"split_layer"`
	Fold       int               `json:"fold"`
	Configs    []trainBenchEntry `json:"configs"`
	// Industrial is the 100k+-cell tier's training measurement (see
	// industrial.go); absent in baselines written before the tier existed.
	Industrial *industrialTrainEntry `json:"industrial,omitempty"`
}

// trainBenchEntry is one config's cold-train vs warm-load measurement in
// the BENCH_train.json baseline.
type trainBenchEntry struct {
	Config string `json:"config"`
	// ColdTrainNs is a full in-process model.Train for fold 0: sampling,
	// level-1 ensemble training, and (for two-level configs) the pruning
	// stage.
	ColdTrainNs int64 `json:"cold_train_ns"`
	// EncodeNs and ArtifactBytes measure MarshalBinary on the trained
	// artifact; WarmLoadNs measures UnmarshalArtifact on the same blob —
	// the cost an `attack -model` run pays instead of ColdTrainNs.
	EncodeNs      int64 `json:"encode_ns"`
	ArtifactBytes int   `json:"artifact_bytes"`
	WarmLoadNs    int64 `json:"warm_load_ns"`
	// StoreMissNs and StoreHitNs are Store.GetOrTrain timings for the same
	// spec: the first call trains, the second is served from the LRU.
	StoreMissNs int64 `json:"store_miss_ns"`
	StoreHitNs  int64 `json:"store_hit_ns"`
	// Speedup is ColdTrainNs over WarmLoadNs: how much faster a sweep
	// resumes when the fold's artifact is already on disk.
	Speedup float64 `json:"speedup"`
	Samples int     `json:"samples"`
	Trees   int     `json:"trees"`
}

// benchChallenges cuts every design at the baseline split layer.
func benchChallenges(designs []*layout.Design) ([]*split.Challenge, error) {
	chs := make([]*split.Challenge, 0, len(designs))
	for _, d := range designs {
		c, err := split.NewChallenge(d, benchSplitLayer)
		if err != nil {
			return nil, err
		}
		chs = append(chs, c)
	}
	return chs, nil
}

// measureScoring trains and scores one leave-one-out target per standard
// configuration at the baseline split layer, once through the scalar oracle
// and once through the batched arena path.
func measureScoring(designs []*layout.Design, scale float64, seed int64) (*scoringDoc, error) {
	chs, err := benchChallenges(designs)
	if err != nil {
		return nil, err
	}
	// Instance preparation (feature extractors + spatial pair indexes) is
	// the fixed cost every attack run pays before scoring; measure the
	// serial build against the parallel one so cache and fan-out wins show
	// up in the perf trajectory.
	t0 := time.Now()
	attack.NewInstancesWorkers(chs, 1)
	serialNs := time.Since(t0).Nanoseconds()
	t0 = time.Now()
	attack.NewInstancesWorkers(chs, 0)
	parallelNs := time.Since(t0).Nanoseconds()

	twoLevel := attack.WithTwoLevel(attack.Imp11())
	twoLevel.Name += "-2L"
	configs := []attack.Config{attack.ML9(), attack.Imp11(), twoLevel}
	entries := make([]scoringBenchEntry, 0, len(configs))
	for _, cfg := range configs {
		cfg.Seed = seed
		entry := scoringBenchEntry{Config: cfg.Name}
		for _, scalar := range []bool{true, false} {
			c := cfg
			c.ScalarScoring = scalar
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			ev, _, err := attack.RunTarget(c, chs, 0)
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, fmt.Errorf("scoring bench %s: %w", c.Name, err)
			}
			pps := float64(ev.PairsScored) / ev.TestDur.Seconds()
			mallocs := float64(after.Mallocs-before.Mallocs) / float64(ev.PairsScored)
			if scalar {
				entry.Pairs = ev.PairsScored
				entry.ScalarPairsPerSec = pps
				entry.ScalarMallocsPerPair = mallocs
			} else {
				entry.BatchPairsPerSec = pps
				entry.BatchMallocsPerPair = mallocs
				entry.Batches = ev.Batches
				entry.BatchRows = ev.BatchRows
			}
		}
		entry.Speedup = entry.BatchPairsPerSec / entry.ScalarPairsPerSec
		entries = append(entries, entry)
	}
	return &scoringDoc{
		Scale: scale, Seed: seed, SplitLayer: benchSplitLayer,
		InstancePrep: instancePrepDoc{
			Designs:    len(chs),
			SerialNs:   serialNs,
			ParallelNs: parallelNs,
			Speedup:    float64(serialNs) / float64(parallelNs),
		},
		Configs: entries,
	}, nil
}

// measureTrain measures the train-once/score-many trade for fold 0 at the
// baseline split layer: a cold in-process train, the artifact codec
// round-trip, and a Store miss/hit pair, per standard configuration.
func measureTrain(designs []*layout.Design, scale float64, seed int64) (*trainDoc, error) {
	chs, err := benchChallenges(designs)
	if err != nil {
		return nil, err
	}
	insts := attack.NewInstancesWorkers(chs, 0)

	twoLevel := attack.WithTwoLevel(attack.Imp11())
	twoLevel.Name += "-2L"
	configs := []attack.Config{attack.Imp11(), twoLevel}
	entries := make([]trainBenchEntry, 0, len(configs))
	for _, cfg := range configs {
		cfg.Seed = seed
		spec, _, err := attack.TrainSpec(cfg, insts, 0)
		if err != nil {
			return nil, fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}

		t0 := time.Now()
		art, _, err := model.Train(spec)
		if err != nil {
			return nil, fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		coldNs := time.Since(t0).Nanoseconds()

		t0 = time.Now()
		blob, err := art.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		encodeNs := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if _, err := model.UnmarshalArtifact(blob); err != nil {
			return nil, fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		warmNs := time.Since(t0).Nanoseconds()

		store := model.NewStore(0, "")
		t0 = time.Now()
		if _, _, err := store.GetOrTrain(spec); err != nil {
			return nil, fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		missNs := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if _, _, err := store.GetOrTrain(spec); err != nil {
			return nil, fmt.Errorf("train bench %s: %w", cfg.Name, err)
		}
		hitNs := time.Since(t0).Nanoseconds()

		entries = append(entries, trainBenchEntry{
			Config:        cfg.Name,
			ColdTrainNs:   coldNs,
			EncodeNs:      encodeNs,
			ArtifactBytes: len(blob),
			WarmLoadNs:    warmNs,
			StoreMissNs:   missNs,
			StoreHitNs:    hitNs,
			Speedup:       float64(coldNs) / float64(warmNs),
			Samples:       art.Meta.Samples,
			Trees:         art.Meta.Trees,
		})
	}
	return &trainDoc{
		Scale: scale, Seed: seed, SplitLayer: benchSplitLayer, Fold: 0,
		Configs: entries,
	}, nil
}

// writeBaseline marshals a baseline document to path.
func writeBaseline(path string, doc any) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
